//! Deliberately broken arbiters: the checker's sensitivity controls.
//!
//! A model checker that never finds anything proves nothing — it may simply
//! be blind. These types seed known violations that the exploration tiers
//! **must** detect (`tests/check_arbiters.rs` asserts they do):
//!
//! * [`BuggyCasLtCell`] keeps CAS-LT's read-skip fast path but replaces the
//!   compare-and-swap with a plain store — the classic check-then-act race.
//!   Two threads that both load the stale round before either stores will
//!   both "win". Single-threaded the cell is indistinguishable from the
//!   real [`pram_core::CasLtCell`] (the unit tests below pin that), which
//!   is exactly why stochastic tests pass it most of the time and why a
//!   schedule-exploring checker is needed at all.
//! * [`EarlyReleaseBarrier`] is a dissemination barrier built exactly like
//!   [`pram_exec::DisseminationBarrier`] but running **one signal round
//!   too few** — each thread synchronizes only with a neighborhood of the
//!   team instead of all of it, so schedules exist where a thread passes
//!   the "barrier" before a straggler has arrived. Sequentially (and for a
//!   single participant) it is indistinguishable from the real thing.
//! * [`DroppingStealer`] is a work-stealing queue set whose steal takes
//!   the victim's back half but **forgets to re-queue** everything beyond
//!   the range it returns — a thief that steals more than one chunk loses
//!   work. Schedules where every steal moves a single chunk (including
//!   all single-threaded ones) behave perfectly.
//! * [`CountingClaimCell`] is a gatekeeper whose claim **consults a
//!   counter read** instead of the atomic capture: it loads the counter,
//!   treats `0` as the win condition, and stores the increment separately.
//!   Telemetry counters are exactly this shape (a read-modify-write next
//!   to the claim), which is why the passivity tests exist: instrumenting
//!   an arbiter must never let counter state *feed back* into the claim
//!   decision the way this cell's does.
//! * [`BuggySwitchArbiter`] is an adaptive arbiter that changes its
//!   delegate **mid-round** instead of at an epoch boundary: once a
//!   win-count trigger fires it migrates per-cell claim state from the
//!   CAS-LT words to the gatekeeper counters with a plain copy loop, then
//!   flips the active delegate. The copy races in-flight claims — a CAS
//!   that lands *after* its cell was migrated as "unclaimed" wins on the
//!   old delegate while a later claimant wins the same `(cell, round)` on
//!   the new one. This is exactly the failure mode
//!   `pram_core::AdaptiveArbiter` avoids by switching only in the elected
//!   member's slot of the round barrier, and the violation the
//!   `check_adaptive` tier must be able to see.
//!
//! All of these route their shared state through `pram_core::sync`, so
//! under `--cfg pram_check` every racy load and store is a scheduling
//! point.

use std::collections::VecDeque;
use std::ops::Range;

use pram_core::sync::{self as psync, AtomicU32, Ordering};
use pram_core::{Round, SliceArbiter};

/// CAS-LT with the CAS replaced by a check-then-act load/store pair.
///
/// Sound single-threaded; under concurrency, any schedule that interleaves
/// two `try_claim` calls between their loads and stores produces two
/// winners for the same `(cell, round)`.
#[derive(Debug, Default)]
pub struct BuggyCasLtCell {
    last_round_updated: AtomicU32,
}

impl BuggyCasLtCell {
    /// A never-claimed cell.
    pub const fn new() -> BuggyCasLtCell {
        BuggyCasLtCell {
            last_round_updated: AtomicU32::new(0),
        }
    }

    /// Claim for `round` — **racy**: the winner check and the update are
    /// separate operations, so concurrent callers can all pass the check.
    #[inline]
    pub fn try_claim(&self, round: Round) -> bool {
        let current = self.last_round_updated.load(Ordering::Relaxed);
        if current >= round.get() {
            return false;
        }
        // BUG (intentional): a real CAS-LT must compare_exchange from
        // `current`; a plain store lets every thread that loaded the stale
        // value commit a "win".
        self.last_round_updated
            .store(round.get(), Ordering::Relaxed);
        true
    }

    /// Restore the never-claimed state.
    pub fn reset(&mut self) {
        *self.last_round_updated.get_mut() = 0;
    }
}

/// An indexed family of [`BuggyCasLtCell`]s, so the broken scheme can be
/// driven through the same generic models as the real arbiters.
#[derive(Debug)]
pub struct BuggyCasLtArray {
    cells: Box<[BuggyCasLtCell]>,
}

impl BuggyCasLtArray {
    /// `len` never-claimed cells.
    pub fn new(len: usize) -> BuggyCasLtArray {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, BuggyCasLtCell::new);
        BuggyCasLtArray {
            cells: v.into_boxed_slice(),
        }
    }
}

impl SliceArbiter for BuggyCasLtArray {
    fn len(&self) -> usize {
        self.cells.len()
    }
    #[inline]
    fn try_claim(&self, index: usize, round: Round) -> bool {
        self.cells[index].try_claim(round)
    }
    fn reset_all(&self) {
        for c in self.cells.iter() {
            c.last_round_updated.store(0, Ordering::Relaxed);
        }
    }
    fn reset_range(&self, range: Range<usize>) {
        for c in &self.cells[range] {
            c.last_round_updated.store(0, Ordering::Relaxed);
        }
    }
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

/// A gatekeeper whose claim decision rides on a counter *read* (see
/// module docs): load, compare with 0, store the increment — the atomic
/// capture decomposed into a check-then-act pair.
///
/// Sequentially indistinguishable from [`pram_core::GatekeeperCell`]
/// (the unit tests below pin that); under concurrency, any schedule that
/// interleaves two claims between their loads and stores elects two
/// winners — and also *loses* increments, so the counter undercounts the
/// claim multiplicity (the conservation invariant telemetry tests rely
/// on).
#[derive(Debug, Default)]
pub struct CountingClaimCell {
    count: AtomicU32,
}

impl CountingClaimCell {
    /// A zeroed (armed) cell.
    pub const fn new() -> CountingClaimCell {
        CountingClaimCell {
            count: AtomicU32::new(0),
        }
    }

    /// Claim — **racy**: the winner check reads the counter instead of
    /// capturing it atomically.
    #[inline]
    pub fn try_claim_once(&self) -> bool {
        // BUG (intentional): a real gatekeeper performs one atomic
        // fetch_add and decides on the captured value; reading first lets
        // every thread that observed 0 win, and the separate stores drop
        // concurrent increments.
        let c = self.count.load(Ordering::Relaxed);
        self.count.store(c + 1, Ordering::Relaxed);
        c == 0
    }

    /// Claim count observed so far (undercounts under the seeded race).
    pub fn count(&self) -> u32 {
        self.count.load(Ordering::Relaxed)
    }

    /// Re-arm (exclusive access).
    pub fn reset(&mut self) {
        *self.count.get_mut() = 0;
    }
}

/// Single-cell [`SliceArbiter`] view so the broken scheme drives the same
/// generic models as the real arbiters (claims target cell 0; the round
/// is ignored, as for every gatekeeper).
impl SliceArbiter for CountingClaimCell {
    fn len(&self) -> usize {
        1
    }
    #[inline]
    fn try_claim(&self, index: usize, _round: Round) -> bool {
        assert_eq!(index, 0, "CountingClaimCell arbitrates a single target");
        self.try_claim_once()
    }
    fn reset_all(&self) {
        self.count.store(0, Ordering::Relaxed);
    }
    fn reset_range(&self, range: Range<usize>) {
        if range.contains(&0) {
            self.count.store(0, Ordering::Relaxed);
        }
    }
    fn rearms_on_new_round(&self) -> bool {
        false
    }
}

/// A dissemination barrier with one signal round too few (see module
/// docs). Mirrors `pram_exec::DisseminationBarrier`'s episode-stamp
/// protocol — monotone flags, `>=` waits, member-0 broadcast for
/// `wait_with` — so the *only* difference the checker can find is the
/// missing round.
#[derive(Debug)]
pub struct EarlyReleaseBarrier {
    /// `flags[tid][r]`: episode stamp from `tid`'s round-`r` partner.
    flags: Box<[Box<[psync::AtomicU64]>]>,
    /// Per-thread episode counter (thread-private, hence plain std).
    episode: Box<[std::sync::atomic::AtomicU64]>,
    /// Broadcast slot for `wait_with`.
    release: psync::AtomicU64,
    total: usize,
    rounds: u32,
}

impl EarlyReleaseBarrier {
    /// A broken barrier for `total` participants.
    pub fn new(total: usize) -> EarlyReleaseBarrier {
        assert!(total >= 1);
        let full = if total > 1 {
            usize::BITS - (total - 1).leading_zeros()
        } else {
            0
        };
        // BUG (intentional): one dissemination round short. Each thread
        // now waits on a strict subset of the team's arrivals.
        let rounds = full.saturating_sub(1);
        let mk = || {
            let mut v = Vec::with_capacity(rounds as usize);
            v.resize_with(rounds as usize, || psync::AtomicU64::new(0));
            v.into_boxed_slice()
        };
        let mut flags = Vec::with_capacity(total);
        flags.resize_with(total, mk);
        let mut episode = Vec::with_capacity(total);
        episode.resize_with(total, || std::sync::atomic::AtomicU64::new(0));
        EarlyReleaseBarrier {
            flags: flags.into_boxed_slice(),
            episode: episode.into_boxed_slice(),
            release: psync::AtomicU64::new(0),
            total,
            rounds,
        }
    }

    fn spin_until(&self, flag: &psync::AtomicU64, episode: u64) {
        let addr = flag as *const psync::AtomicU64 as usize;
        while flag.load(Ordering::Acquire) < episode {
            psync::park_hint(addr);
        }
    }

    fn rendezvous(&self, tid: usize) -> u64 {
        let e = self.episode[tid].load(Ordering::Relaxed) + 1;
        self.episode[tid].store(e, Ordering::Relaxed);
        for r in 0..self.rounds {
            let partner = (tid + (1usize << r)) % self.total;
            let flag = &self.flags[partner][r as usize];
            flag.store(e, Ordering::Release);
            psync::unpark_hint(flag as *const psync::AtomicU64 as usize);
            self.spin_until(&self.flags[tid][r as usize], e);
        }
        e
    }

    /// Broken rendezvous; `true` on member 0 (the same election contract
    /// as the real barrier).
    pub fn wait(&self, tid: usize) -> bool {
        self.rendezvous(tid);
        tid == 0
    }

    /// Broken rendezvous with member-0 closure + broadcast.
    pub fn wait_with(&self, tid: usize, f: impl FnOnce()) -> bool {
        let e = self.rendezvous(tid);
        if tid == 0 {
            f();
            self.release.store(e, Ordering::Release);
            psync::unpark_hint(&self.release as *const psync::AtomicU64 as usize);
            true
        } else {
            self.spin_until(&self.release, e);
            false
        }
    }
}

/// An adaptive-style arbiter that switches delegate **mid-round** (see
/// module docs): CAS-LT words and gatekeeper counters side by side, a
/// win-count trigger, and a non-atomic state migration executed by
/// whichever claimant trips the trigger — no barrier, no epoch boundary.
///
/// Sequentially (one thread running each `try_claim` to completion) the
/// migration always observes settled claim state, so the arbiter is
/// indistinguishable from a correct one: every claimed cell migrates as
/// claimed, every unclaimed cell as unclaimed, and single-winner holds.
/// The unit tests below pin that. Under concurrency a schedule can place
/// the migration's read of a cell *between* another claimant's fast-path
/// load and its CAS: the migrator records the cell unclaimed (gatekeeper
/// counter 0), the in-flight CAS then wins on the CAS-LT side, and a
/// later claimant wins the *same* `(cell, round)` through the fresh
/// gatekeeper counter — two winners, reachable only by interleaving.
#[derive(Debug)]
pub struct BuggySwitchArbiter {
    /// CAS-LT claim words (delegate 0).
    caslt: Box<[AtomicU32]>,
    /// Gatekeeper counters (delegate 1).
    gate: Box<[AtomicU32]>,
    /// 0 = CAS-LT active, 1 = gatekeeper active.
    active: AtomicU32,
    /// Total wins observed; reaching `switch_after` trips the migration.
    /// Plain `std` so the trigger itself adds no scheduling points — the
    /// seeded race lives in the migration copy loop, not the counter.
    wins: std::sync::atomic::AtomicU32,
    switch_after: u32,
}

impl BuggySwitchArbiter {
    /// `len` cells, switching delegates after `switch_after` wins.
    pub fn new(len: usize, switch_after: u32) -> BuggySwitchArbiter {
        let mk = |_| AtomicU32::new(0);
        BuggySwitchArbiter {
            caslt: (0..len).map(mk).collect(),
            gate: (0..len).map(mk).collect(),
            active: AtomicU32::new(0),
            wins: std::sync::atomic::AtomicU32::new(0),
            switch_after,
        }
    }

    /// Which delegate is active (0 = CAS-LT, 1 = gatekeeper).
    pub fn active_delegate(&self) -> u32 {
        self.active.load(Ordering::Relaxed)
    }
}

impl SliceArbiter for BuggySwitchArbiter {
    fn len(&self) -> usize {
        self.caslt.len()
    }
    fn try_claim(&self, index: usize, round: Round) -> bool {
        let won = if self.active.load(Ordering::Acquire) == 0 {
            // CAS-LT delegate: fast-path load, then one CAS.
            let w = &self.caslt[index];
            let current = w.load(Ordering::Relaxed);
            current < round.get()
                && w.compare_exchange(current, round.get(), Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
        } else {
            // Gatekeeper delegate: first capture wins.
            self.gate[index].fetch_add(1, Ordering::Relaxed) == 0
        };
        // The first `switch_after` wins all happen on the CAS-LT delegate
        // (a gatekeeper win requires the migration to have already run),
        // so the trigger fires exactly once, on a CAS-LT winner.
        if won
            && self.wins.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1 == self.switch_after
        {
            // BUG (intentional): migrate delegate state mid-round. A
            // correct adaptive arbiter only switches at an epoch boundary
            // (all claimants quiescent at a barrier); this copy loop races
            // claims still in flight, so a cell can migrate as "unclaimed"
            // an instant before a CAS wins it on the old delegate.
            for (c, g) in self.caslt.iter().zip(self.gate.iter()) {
                let claimed = c.load(Ordering::Relaxed) >= round.get();
                g.store(u32::from(claimed), Ordering::Relaxed);
            }
            self.active.store(1, Ordering::Release);
        }
        won
    }
    fn reset_all(&self) {
        for (c, g) in self.caslt.iter().zip(self.gate.iter()) {
            c.store(0, Ordering::Relaxed);
            g.store(0, Ordering::Relaxed);
        }
        self.wins.store(0, std::sync::atomic::Ordering::Relaxed);
        self.active.store(0, Ordering::Relaxed);
    }
    fn reset_range(&self, range: Range<usize>) {
        for i in range {
            self.caslt[i].store(0, Ordering::Relaxed);
            self.gate[i].store(0, Ordering::Relaxed);
        }
    }
    fn rearms_on_new_round(&self) -> bool {
        // Matches its CAS-LT starting delegate; irrelevant to the seeded
        // bug, which fires within a single round.
        self.active.load(Ordering::Relaxed) == 0
    }
}

/// Work-stealing chunk deques whose steal drops everything beyond the
/// first stolen range (see module docs). Seeded explicitly rather than by
/// static partitioning so models can force an asymmetric start (one rich
/// victim, one empty thief) that makes multi-chunk steals reachable in a
/// small exhaustive tree.
#[derive(Debug)]
pub struct DroppingStealer {
    deques: Box<[psync::Mutex<VecDeque<Range<usize>>>]>,
}

impl DroppingStealer {
    /// Empty deques for `workers` threads.
    pub fn new(workers: usize) -> DroppingStealer {
        assert!(workers >= 1);
        let mut v = Vec::with_capacity(workers);
        v.resize_with(workers, || psync::Mutex::new(VecDeque::new()));
        DroppingStealer {
            deques: v.into_boxed_slice(),
        }
    }

    /// Seed worker `tid` with ranges (call before exploration starts).
    pub fn seed(&self, tid: usize, ranges: impl IntoIterator<Item = Range<usize>>) {
        self.deques[tid].lock().extend(ranges);
    }

    /// Next range for `tid`: own front, else steal the first non-empty
    /// victim's back half — **returning only one range and dropping the
    /// rest of the stolen batch** (the seeded bug).
    pub fn next(&self, tid: usize) -> Option<Range<usize>> {
        if let Some(r) = self.deques[tid].lock().pop_front() {
            return Some(r);
        }
        let n = self.deques.len();
        for k in 1..n {
            let victim = (tid + k) % n;
            let mut dq = self.deques[victim].lock();
            let len = dq.len();
            if len == 0 {
                continue;
            }
            let mut batch = dq.split_off(len - len.div_ceil(2));
            drop(dq);
            // BUG (intentional): a correct stealer re-queues the rest of
            // the batch on its own deque; this one lets it fall on the
            // floor.
            return batch.pop_front();
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Single-threaded, the buggy cell is behaviorally identical to the
    // real CAS-LT — the bug exists only in interleavings, which is what
    // makes it a useful sensitivity control for the checker.

    #[test]
    fn sequentially_indistinguishable_from_caslt() {
        let buggy = BuggyCasLtCell::new();
        let real = pram_core::CasLtCell::new();
        for r in [Round::FIRST, Round::from_iteration(1), Round::FIRST] {
            assert_eq!(
                buggy.try_claim(r),
                pram_core::Arbiter::try_claim(&real, r),
                "sequential divergence at {r:?}"
            );
        }
    }

    #[test]
    fn first_claim_wins_then_loses_until_new_round() {
        let c = BuggyCasLtCell::new();
        assert!(c.try_claim(Round::FIRST));
        assert!(!c.try_claim(Round::FIRST));
        assert!(c.try_claim(Round::from_iteration(1)));
        // Stale round after an advance loses.
        assert!(!c.try_claim(Round::FIRST));
    }

    #[test]
    fn reset_rearms() {
        let mut c = BuggyCasLtCell::new();
        assert!(c.try_claim(Round::FIRST));
        c.reset();
        assert!(c.try_claim(Round::FIRST));
    }

    #[test]
    fn early_release_barrier_skips_synchronization_sequentially() {
        // The bug is visible even single-threaded: with the truncated
        // round count, a two-thread barrier performs zero signal rounds,
        // so one participant sails through with nobody else arrived.
        let b = EarlyReleaseBarrier::new(2);
        assert!(b.wait(0)); // returns without thread 1 ever arriving
        assert!(b.wait_with(0, || {}));
        // Single participant is degenerate for real and buggy alike.
        let solo = EarlyReleaseBarrier::new(1);
        assert!(solo.wait(0));
    }

    #[test]
    fn dropping_stealer_loses_work_on_multi_chunk_steals() {
        let q = DroppingStealer::new(2);
        q.seed(0, (0..4).map(|i| i..i + 1));
        // Thief takes the back half (two ranges) but returns only one.
        let got = q.next(1).expect("victim non-empty");
        assert_eq!(got, 2..3);
        // 3..4 is gone: neither deque holds it.
        let mut rest = vec![];
        while let Some(r) = q.next(0) {
            rest.push(r);
        }
        while let Some(r) = q.next(1) {
            rest.push(r);
        }
        assert_eq!(rest, vec![0..1, 1..2], "dropped range resurfaced");
    }

    #[test]
    fn counting_cell_sequentially_indistinguishable_from_gatekeeper() {
        let buggy = CountingClaimCell::new();
        let real = pram_core::GatekeeperCell::new();
        for _ in 0..5 {
            assert_eq!(buggy.try_claim_once(), real.try_claim_once());
        }
        assert_eq!(buggy.count(), real.count());
        let (mut buggy, mut real) = (buggy, real);
        buggy.reset();
        real.reset();
        assert_eq!(buggy.try_claim_once(), real.try_claim_once());
    }

    #[test]
    fn counting_cell_slice_arbiter_contract() {
        let c = CountingClaimCell::new();
        assert_eq!(SliceArbiter::len(&c), 1);
        assert!(SliceArbiter::try_claim(&c, 0, Round::FIRST));
        assert!(!SliceArbiter::try_claim(&c, 0, Round::FIRST));
        // Gatekeeper semantics: a new round does not re-arm.
        assert!(!SliceArbiter::try_claim(&c, 0, Round::from_iteration(1)));
        assert!(!c.rearms_on_new_round());
        c.reset_range(0..1);
        assert!(SliceArbiter::try_claim(&c, 0, Round::FIRST));
        c.reset_all();
        assert!(SliceArbiter::try_claim(&c, 0, Round::FIRST));
    }

    #[test]
    #[should_panic(expected = "single target")]
    fn counting_cell_rejects_other_indices() {
        let c = CountingClaimCell::new();
        SliceArbiter::try_claim(&c, 1, Round::FIRST);
    }

    // Run each thread's claim to completion, one after another — the
    // settled-state executions under which the mid-round switcher is
    // indistinguishable from a correct adaptive arbiter.

    #[test]
    fn switch_arbiter_sequentially_single_winner_across_the_switch() {
        let a = BuggySwitchArbiter::new(2, 1);
        assert_eq!(a.active_delegate(), 0);
        // First win trips the migration; the claimed cell migrates as
        // claimed, the fresh cell as fresh.
        assert!(a.try_claim(0, Round::FIRST));
        assert_eq!(a.active_delegate(), 1);
        assert!(!a.try_claim(0, Round::FIRST), "migrated cell re-won");
        // The untouched cell still elects exactly one winner, now through
        // the gatekeeper delegate.
        assert!(a.try_claim(1, Round::FIRST));
        assert!(!a.try_claim(1, Round::FIRST));
    }

    #[test]
    fn switch_arbiter_trigger_threshold_and_reset() {
        let a = BuggySwitchArbiter::new(3, 2);
        assert!(a.try_claim(0, Round::FIRST));
        assert_eq!(a.active_delegate(), 0, "one win below threshold");
        assert!(a.try_claim(1, Round::FIRST));
        assert_eq!(a.active_delegate(), 1, "second win trips the switch");
        assert!(a.try_claim(2, Round::FIRST));
        a.reset_all();
        assert_eq!(a.active_delegate(), 0);
        assert!(a.try_claim(0, Round::FIRST));
        assert!(a.rearms_on_new_round() || a.active_delegate() == 1);
    }

    #[test]
    fn switch_arbiter_contract_surface() {
        let a = BuggySwitchArbiter::new(2, u32::MAX);
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(a.rearms_on_new_round(), "CAS-LT delegate re-arms");
        assert!(a.try_claim(0, Round::FIRST));
        a.reset_range(0..1);
        assert!(a.try_claim(0, Round::FIRST));
    }

    #[test]
    fn array_claims_and_resets() {
        let a = BuggyCasLtArray::new(3);
        assert_eq!(a.len(), 3);
        assert!(a.try_claim(1, Round::FIRST));
        assert!(!a.try_claim(1, Round::FIRST));
        assert!(a.try_claim(2, Round::FIRST));
        a.reset_range(1..2);
        assert!(a.try_claim(1, Round::FIRST));
        assert!(!a.try_claim(2, Round::FIRST));
        a.reset_all();
        assert!(a.try_claim(2, Round::FIRST));
        assert!(a.rearms_on_new_round());
    }
}
