//! Deliberately broken arbiters: the checker's sensitivity controls.
//!
//! A model checker that never finds anything proves nothing — it may simply
//! be blind. These types seed known violations that the exploration tiers
//! **must** detect (`tests/check_arbiters.rs` asserts they do):
//!
//! * [`BuggyCasLtCell`] keeps CAS-LT's read-skip fast path but replaces the
//!   compare-and-swap with a plain store — the classic check-then-act race.
//!   Two threads that both load the stale round before either stores will
//!   both "win". Single-threaded the cell is indistinguishable from the
//!   real [`pram_core::CasLtCell`] (the unit tests below pin that), which
//!   is exactly why stochastic tests pass it most of the time and why a
//!   schedule-exploring checker is needed at all.
//!
//! The cells go through `pram_core::sync`, so under `--cfg pram_check` the
//! racy load and store are both scheduling points.

use std::ops::Range;

use pram_core::sync::{AtomicU32, Ordering};
use pram_core::{Round, SliceArbiter};

/// CAS-LT with the CAS replaced by a check-then-act load/store pair.
///
/// Sound single-threaded; under concurrency, any schedule that interleaves
/// two `try_claim` calls between their loads and stores produces two
/// winners for the same `(cell, round)`.
#[derive(Debug, Default)]
pub struct BuggyCasLtCell {
    last_round_updated: AtomicU32,
}

impl BuggyCasLtCell {
    /// A never-claimed cell.
    pub const fn new() -> BuggyCasLtCell {
        BuggyCasLtCell {
            last_round_updated: AtomicU32::new(0),
        }
    }

    /// Claim for `round` — **racy**: the winner check and the update are
    /// separate operations, so concurrent callers can all pass the check.
    #[inline]
    pub fn try_claim(&self, round: Round) -> bool {
        let current = self.last_round_updated.load(Ordering::Relaxed);
        if current >= round.get() {
            return false;
        }
        // BUG (intentional): a real CAS-LT must compare_exchange from
        // `current`; a plain store lets every thread that loaded the stale
        // value commit a "win".
        self.last_round_updated
            .store(round.get(), Ordering::Relaxed);
        true
    }

    /// Restore the never-claimed state.
    pub fn reset(&mut self) {
        *self.last_round_updated.get_mut() = 0;
    }
}

/// An indexed family of [`BuggyCasLtCell`]s, so the broken scheme can be
/// driven through the same generic models as the real arbiters.
#[derive(Debug)]
pub struct BuggyCasLtArray {
    cells: Box<[BuggyCasLtCell]>,
}

impl BuggyCasLtArray {
    /// `len` never-claimed cells.
    pub fn new(len: usize) -> BuggyCasLtArray {
        let mut v = Vec::with_capacity(len);
        v.resize_with(len, BuggyCasLtCell::new);
        BuggyCasLtArray {
            cells: v.into_boxed_slice(),
        }
    }
}

impl SliceArbiter for BuggyCasLtArray {
    fn len(&self) -> usize {
        self.cells.len()
    }
    #[inline]
    fn try_claim(&self, index: usize, round: Round) -> bool {
        self.cells[index].try_claim(round)
    }
    fn reset_all(&self) {
        for c in self.cells.iter() {
            c.last_round_updated.store(0, Ordering::Relaxed);
        }
    }
    fn reset_range(&self, range: Range<usize>) {
        for c in &self.cells[range] {
            c.last_round_updated.store(0, Ordering::Relaxed);
        }
    }
    fn rearms_on_new_round(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Single-threaded, the buggy cell is behaviorally identical to the
    // real CAS-LT — the bug exists only in interleavings, which is what
    // makes it a useful sensitivity control for the checker.

    #[test]
    fn sequentially_indistinguishable_from_caslt() {
        let buggy = BuggyCasLtCell::new();
        let real = pram_core::CasLtCell::new();
        for r in [Round::FIRST, Round::from_iteration(1), Round::FIRST] {
            assert_eq!(
                buggy.try_claim(r),
                pram_core::Arbiter::try_claim(&real, r),
                "sequential divergence at {r:?}"
            );
        }
    }

    #[test]
    fn first_claim_wins_then_loses_until_new_round() {
        let c = BuggyCasLtCell::new();
        assert!(c.try_claim(Round::FIRST));
        assert!(!c.try_claim(Round::FIRST));
        assert!(c.try_claim(Round::from_iteration(1)));
        // Stale round after an advance loses.
        assert!(!c.try_claim(Round::FIRST));
    }

    #[test]
    fn reset_rearms() {
        let mut c = BuggyCasLtCell::new();
        assert!(c.try_claim(Round::FIRST));
        c.reset();
        assert!(c.try_claim(Round::FIRST));
    }

    #[test]
    fn array_claims_and_resets() {
        let a = BuggyCasLtArray::new(3);
        assert_eq!(a.len(), 3);
        assert!(a.try_claim(1, Round::FIRST));
        assert!(!a.try_claim(1, Round::FIRST));
        assert!(a.try_claim(2, Round::FIRST));
        a.reset_range(1..2);
        assert!(a.try_claim(1, Round::FIRST));
        assert!(!a.try_claim(2, Round::FIRST));
        a.reset_all();
        assert!(a.try_claim(2, Round::FIRST));
        assert!(a.rearms_on_new_round());
    }
}
