//! Exploration tiers over the lockstep executor: bounded-exhaustive DFS,
//! seeded random/PCT schedules, and schedule replay.
//!
//! Every reported [`Violation`] carries its reproducer: the exact
//! granted-thread schedule (and, for the random tier, the seed that
//! generated it). `EXPERIMENTS.md` documents the replay workflow.

use std::fmt;

use crate::executor::run_one;
use crate::models::Model;
use crate::schedule::{Chooser, DfsChooser, FixedChooser, PctChooser, RandomChooser};

/// Bounds for an exploration run.
#[derive(Clone, Copy, Debug)]
pub struct ExploreOptions {
    /// Per-execution scheduling-point bound; exceeding it is a violation
    /// (a runaway schedule), not a hang.
    pub max_steps: usize,
    /// Execution cap for the exhaustive tier; hitting it makes the report
    /// incomplete rather than running unbounded.
    pub max_executions: usize,
}

impl Default for ExploreOptions {
    fn default() -> ExploreOptions {
        ExploreOptions {
            max_steps: 20_000,
            max_executions: 250_000,
        }
    }
}

/// A property failure, with everything needed to reproduce it.
#[derive(Clone, Debug)]
pub struct Violation {
    /// Name of the model that failed.
    pub model: String,
    /// What went wrong (model assertion, torn payload, deadlock, panic…).
    pub message: String,
    /// The granted-thread schedule of the failing execution; feed to
    /// [`replay`] to reproduce it deterministically.
    pub schedule: Vec<usize>,
    /// For the random tier: the seed whose schedule failed; feed to
    /// [`replay_seed`].
    pub seed: Option<u64>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "violation in model `{}`: {}", self.model, self.message)?;
        writeln!(f, "  schedule (granted thread ids): {:?}", self.schedule)?;
        if let Some(seed) = self.seed {
            writeln!(f, "  random-tier seed: {seed:#x} (replay with replay_seed)")?;
        }
        write!(
            f,
            "  replay: pram_check::explore::replay(make_model, &{:?})",
            self.schedule
        )
    }
}

/// Outcome of an exploration.
#[derive(Debug)]
pub struct ExploreReport {
    /// Number of executions performed.
    pub executions: usize,
    /// `true` iff the schedule tree was fully enumerated (exhaustive tier
    /// only; random tiers always report `false`).
    pub complete: bool,
    /// The first violation found, if any; exploration stops at the first.
    pub violation: Option<Violation>,
}

impl ExploreReport {
    /// Panic with the full reproducer if a violation was found — the
    /// assertion helper for models expected to pass.
    pub fn assert_clean(&self) {
        if let Some(v) = &self.violation {
            panic!("{v}\n  ({} executions before failure)", self.executions);
        }
    }
}

/// Exhaustively enumerate every schedule of `make()`'s model, depth-first,
/// up to `opts.max_executions`.
///
/// `make` must build a *fresh, deterministic* model each call: the DFS
/// replays choice prefixes, which only reach the same tree node if the
/// model behaves identically under identical schedules.
pub fn explore_exhaustive<M: Model>(
    mut make: impl FnMut() -> M,
    opts: &ExploreOptions,
) -> ExploreReport {
    let mut prefix: Vec<usize> = Vec::new();
    let mut executions = 0;
    loop {
        let mut model = make();
        let mut chooser = DfsChooser::with_prefix(prefix);
        let outcome = run_one(&mut model, &mut chooser, opts.max_steps);
        executions += 1;
        if let Some(message) = outcome.violation {
            return ExploreReport {
                executions,
                complete: false,
                violation: Some(Violation {
                    model: model.name().to_string(),
                    message,
                    schedule: outcome.trace,
                    seed: None,
                }),
            };
        }
        match chooser.next_prefix() {
            None => {
                return ExploreReport {
                    executions,
                    complete: true,
                    violation: None,
                }
            }
            Some(_) if executions >= opts.max_executions => {
                return ExploreReport {
                    executions,
                    complete: false,
                    violation: None,
                }
            }
            Some(p) => prefix = p,
        }
    }
}

/// The chooser the random tier uses for a given seed: uniform-random for
/// even seeds, PCT priority schedules (depths 2 and 3, alternating) for
/// odd ones. One function so [`replay_seed`] reconstructs the exact
/// chooser a failure report names.
fn chooser_for_seed(seed: u64, threads: usize, opts: &ExploreOptions) -> Box<dyn Chooser> {
    if seed.is_multiple_of(2) {
        Box::new(RandomChooser::new(seed))
    } else {
        let depth = if seed % 4 == 1 { 2 } else { 3 };
        Box::new(PctChooser::new(
            seed,
            threads,
            depth,
            opts.max_steps.min(64),
        ))
    }
}

/// Run `schedules` seeded random/PCT schedules (seeds `base_seed..`),
/// stopping at the first violation.
pub fn explore_random<M: Model>(
    mut make: impl FnMut() -> M,
    schedules: usize,
    base_seed: u64,
    opts: &ExploreOptions,
) -> ExploreReport {
    for i in 0..schedules {
        let seed = base_seed.wrapping_add(i as u64);
        let mut model = make();
        let mut chooser = chooser_for_seed(seed, model.threads(), opts);
        let outcome = run_one(&mut model, chooser.as_mut(), opts.max_steps);
        if let Some(message) = outcome.violation {
            return ExploreReport {
                executions: i + 1,
                complete: false,
                violation: Some(Violation {
                    model: model.name().to_string(),
                    message,
                    schedule: outcome.trace,
                    seed: Some(seed),
                }),
            };
        }
    }
    ExploreReport {
        executions: schedules,
        complete: false,
        violation: None,
    }
}

/// Re-execute one recorded schedule (as printed in a [`Violation`]).
pub fn replay<M: Model>(mut make: impl FnMut() -> M, schedule: &[usize]) -> crate::RunOutcome {
    let mut model = make();
    let mut chooser = FixedChooser::new(schedule.to_vec());
    run_one(
        &mut model,
        &mut chooser,
        ExploreOptions::default().max_steps,
    )
}

/// Re-execute the random-tier schedule generated by `seed`.
pub fn replay_seed<M: Model>(
    mut make: impl FnMut() -> M,
    seed: u64,
    opts: &ExploreOptions,
) -> crate::RunOutcome {
    let mut model = make();
    let mut chooser = chooser_for_seed(seed, model.threads(), opts);
    run_one(&mut model, chooser.as_mut(), opts.max_steps)
}
