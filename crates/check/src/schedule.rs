//! Schedule policies: who runs next at each scheduling point.
//!
//! The executor serializes model threads and, at every scheduling point,
//! asks a [`Chooser`] to pick the next thread from the *enabled* set (those
//! parked at a scheduling point and not blocked on a lock). An execution is
//! fully determined by the resulting sequence of choices, which makes every
//! outcome replayable:
//!
//! * [`DfsChooser`] — systematic depth-first enumeration of the schedule
//!   tree, for the bounded-exhaustive tier;
//! * [`RandomChooser`] — uniform random choice from a seed;
//! * [`PctChooser`] — PCT-style (Burckhardt et al., *A Randomized Scheduler
//!   with Probabilistic Guarantees of Finding Bugs*) priority schedules:
//!   highest-priority enabled thread runs, with `d - 1` random
//!   priority-change points, which finds depth-`d` ordering bugs with
//!   provable probability;
//! * [`FixedChooser`] — replay of a recorded schedule.
//!
//! Policies are deliberately independent of the executor (and compiled in
//! every build) so their enumeration logic is testable with plain unit
//! tests, no instrumented runtime required.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A schedule policy: picks which thread runs at each scheduling point.
pub trait Chooser {
    /// Pick the thread to grant the next step, from `enabled` (nonempty,
    /// ascending thread IDs). Returns one element of `enabled`.
    fn pick(&mut self, enabled: &[usize]) -> usize;
}

/// Depth-first systematic enumeration of the schedule tree.
///
/// Each run replays a `prefix` of *choice indices* (positions within the
/// enabled set, not thread IDs — the enabled set at a given depth is a
/// deterministic function of the prefix) and defaults to index 0 beyond it.
/// After the run, [`DfsChooser::next_prefix`] computes the next prefix in
/// DFS order; `None` means the whole tree has been visited.
#[derive(Debug, Default)]
pub struct DfsChooser {
    prefix: Vec<usize>,
    /// Choice index taken at each depth of the completed run.
    choices: Vec<usize>,
    /// Size of the enabled set at each depth of the completed run.
    widths: Vec<usize>,
}

impl DfsChooser {
    /// The chooser for the first execution (all-zero choices).
    pub fn first() -> DfsChooser {
        DfsChooser::default()
    }

    /// A chooser replaying `prefix` and taking first-choice defaults after.
    pub fn with_prefix(prefix: Vec<usize>) -> DfsChooser {
        DfsChooser {
            prefix,
            ..DfsChooser::default()
        }
    }

    /// The next unvisited prefix in DFS order, based on the run just
    /// completed; `None` when the schedule tree is exhausted.
    pub fn next_prefix(&self) -> Option<Vec<usize>> {
        // Advance the deepest choice that still has an unvisited sibling;
        // everything below it restarts at the first child.
        for depth in (0..self.choices.len()).rev() {
            if self.choices[depth] + 1 < self.widths[depth] {
                let mut p = self.choices[..depth].to_vec();
                p.push(self.choices[depth] + 1);
                return Some(p);
            }
        }
        None
    }

    /// Number of scheduling points in the completed run.
    pub fn depth(&self) -> usize {
        self.choices.len()
    }
}

impl Chooser for DfsChooser {
    fn pick(&mut self, enabled: &[usize]) -> usize {
        let depth = self.choices.len();
        // Clamp defensively: a prefix recorded from a deterministic run
        // always stays in range, so the clamp only matters if a model is
        // nondeterministic (which a later mismatch will surface anyway).
        let idx = self
            .prefix
            .get(depth)
            .copied()
            .unwrap_or(0)
            .min(enabled.len() - 1);
        self.choices.push(idx);
        self.widths.push(enabled.len());
        enabled[idx]
    }
}

/// Uniform random choice among enabled threads, deterministic per seed.
#[derive(Debug)]
pub struct RandomChooser {
    rng: StdRng,
}

impl RandomChooser {
    /// A chooser drawing from the given seed.
    pub fn new(seed: u64) -> RandomChooser {
        RandomChooser {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Chooser for RandomChooser {
    fn pick(&mut self, enabled: &[usize]) -> usize {
        enabled[self.rng.gen_range(0..enabled.len())]
    }
}

/// PCT-style priority scheduling.
///
/// Threads get distinct random base priorities; the highest-priority
/// enabled thread always runs. At `depth - 1` random step indices the
/// currently leading thread is demoted below every other priority, forcing
/// the schedule through a different ordering "layer". Uniform random
/// schedules perturb *every* step and therefore rarely produce the long
/// undisturbed stretches plus one adversarial switch that many real bugs
/// need; PCT generates exactly that shape.
#[derive(Debug)]
pub struct PctChooser {
    priorities: Vec<u64>,
    change_at: Vec<usize>,
    next_low: u64,
    step: usize,
}

impl PctChooser {
    /// A chooser for `threads` threads, bug depth `depth` (≥ 1), assuming
    /// executions of about `expected_steps` scheduling points.
    pub fn new(seed: u64, threads: usize, depth: usize, expected_steps: usize) -> PctChooser {
        assert!(threads > 0, "need at least one thread");
        assert!(depth > 0, "bug depth must be at least 1");
        let mut rng = StdRng::seed_from_u64(seed);
        // Base priorities above `threads` so demotions (which count down
        // from `threads`) always rank below every base priority.
        let mut priorities: Vec<u64> = (0..threads as u64).map(|t| threads as u64 + t).collect();
        // Random permutation (Fisher–Yates) for the starting order.
        for i in (1..priorities.len()).rev() {
            priorities.swap(i, rng.gen_range(0..i + 1));
        }
        let change_at = (0..depth - 1)
            .map(|_| rng.gen_range(0..expected_steps.max(1)))
            .collect();
        PctChooser {
            priorities,
            change_at,
            next_low: threads as u64,
            step: 0,
        }
    }
}

impl Chooser for PctChooser {
    fn pick(&mut self, enabled: &[usize]) -> usize {
        if self.change_at.contains(&self.step) {
            // Demote the current leader below everything seen so far.
            let &leader = enabled
                .iter()
                .max_by_key(|&&t| self.priorities[t])
                .expect("enabled set is nonempty");
            self.next_low = self.next_low.saturating_sub(1);
            self.priorities[leader] = self.next_low;
        }
        self.step += 1;
        *enabled
            .iter()
            .max_by_key(|&&t| self.priorities[t])
            .expect("enabled set is nonempty")
    }
}

/// Replay of a recorded schedule (a sequence of granted thread IDs).
///
/// If the recorded thread is not currently enabled (possible only if the
/// model is nondeterministic) or the schedule is exhausted, falls back to
/// the first enabled thread rather than failing.
#[derive(Debug)]
pub struct FixedChooser {
    schedule: Vec<usize>,
    pos: usize,
    /// Whether every pick so far followed the recorded schedule exactly.
    pub faithful: bool,
}

impl FixedChooser {
    /// Replay `schedule` (as printed by a violation report).
    pub fn new(schedule: Vec<usize>) -> FixedChooser {
        FixedChooser {
            schedule,
            pos: 0,
            faithful: true,
        }
    }
}

impl Chooser for FixedChooser {
    fn pick(&mut self, enabled: &[usize]) -> usize {
        let wanted = self.schedule.get(self.pos).copied();
        self.pos += 1;
        match wanted {
            Some(t) if enabled.contains(&t) => t,
            _ => {
                self.faithful = false;
                enabled[0]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a chooser through a fixed tree shape (same widths every run)
    /// and return the choice sequence it made.
    fn run_tree(ch: &mut DfsChooser, widths: &[usize]) -> Vec<usize> {
        let mut taken = Vec::new();
        for &w in widths {
            let enabled: Vec<usize> = (0..w).collect();
            taken.push(ch.pick(&enabled));
        }
        taken
    }

    #[test]
    fn dfs_enumerates_full_tree_exactly_once() {
        // A 2 × 3 × 2 tree: 12 leaves, visited in lexicographic order.
        let widths = [2usize, 3, 2];
        let mut prefix = Vec::new();
        let mut seen = Vec::new();
        loop {
            let mut ch = DfsChooser::with_prefix(prefix);
            let taken = run_tree(&mut ch, &widths);
            seen.push(taken);
            match ch.next_prefix() {
                Some(p) => prefix = p,
                None => break,
            }
        }
        assert_eq!(seen.len(), 12);
        let mut expected = Vec::new();
        for a in 0..2 {
            for b in 0..3 {
                for c in 0..2 {
                    expected.push(vec![a, b, c]);
                }
            }
        }
        assert_eq!(seen, expected);
    }

    #[test]
    fn dfs_handles_variable_depth() {
        // Runs replaying a deeper sibling may terminate earlier (schedule
        // choices change the program's length); next_prefix only ever
        // extends/advances what was actually recorded.
        let mut ch = DfsChooser::first();
        ch.pick(&[0, 1]); // depth 0, width 2
        assert_eq!(ch.next_prefix(), Some(vec![1]));
        let mut ch = DfsChooser::with_prefix(vec![1]);
        ch.pick(&[0, 1]);
        assert_eq!(ch.next_prefix(), None);
    }

    #[test]
    fn dfs_single_width_tree_is_one_execution() {
        let mut ch = DfsChooser::first();
        for _ in 0..5 {
            assert_eq!(ch.pick(&[7]), 7);
        }
        assert_eq!(ch.next_prefix(), None);
        assert_eq!(ch.depth(), 5);
    }

    #[test]
    fn random_chooser_is_deterministic_per_seed() {
        let enabled = [0usize, 1, 2, 3];
        let mut a = RandomChooser::new(42);
        let mut b = RandomChooser::new(42);
        let mut c = RandomChooser::new(43);
        let xs: Vec<usize> = (0..32).map(|_| a.pick(&enabled)).collect();
        let ys: Vec<usize> = (0..32).map(|_| b.pick(&enabled)).collect();
        let zs: Vec<usize> = (0..32).map(|_| c.pick(&enabled)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
        assert!(xs.iter().all(|t| enabled.contains(t)));
    }

    #[test]
    fn pct_runs_leader_until_change_point() {
        let mut ch = PctChooser::new(7, 3, 2, 16);
        let enabled = [0usize, 1, 2];
        let picks: Vec<usize> = (0..16).map(|_| ch.pick(&enabled)).collect();
        // All picks valid; the leader only changes at change points, so the
        // sequence has at most `depth` distinct runs (here ≤ 2).
        assert!(picks.iter().all(|t| enabled.contains(t)));
        let switches = picks.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(switches <= 1, "depth-2 PCT made {switches} leader switches");
        // Deterministic per seed.
        let mut ch2 = PctChooser::new(7, 3, 2, 16);
        let picks2: Vec<usize> = (0..16).map(|_| ch2.pick(&enabled)).collect();
        assert_eq!(picks, picks2);
    }

    #[test]
    fn pct_respects_enabled_set() {
        let mut ch = PctChooser::new(1, 4, 3, 8);
        for _ in 0..8 {
            assert_eq!(ch.pick(&[2]), 2);
        }
    }

    #[test]
    fn fixed_chooser_replays_and_reports_divergence() {
        let mut ch = FixedChooser::new(vec![2, 0, 1]);
        assert_eq!(ch.pick(&[0, 1, 2]), 2);
        assert_eq!(ch.pick(&[0, 1]), 0);
        assert!(ch.faithful);
        // Recorded thread 1 not enabled: falls back, flags divergence.
        assert_eq!(ch.pick(&[0, 2]), 0);
        assert!(!ch.faithful);
        // Past the end of the schedule: first enabled.
        assert_eq!(ch.pick(&[3, 4]), 3);
    }
}
