//! Checkable models for the execution substrate's synchronization
//! primitives: the dissemination barrier and the work-stealing loop.
//!
//! The arbitration models ([`crate::models`]) assume their barrier — the
//! phase boundary between `run` calls is a total order the executor
//! provides for free. These models check the *barrier itself* (and the
//! stealing deques), which therefore must synchronize **inside** a single
//! phase, through the instrumented `pram_core::sync` facade:
//!
//! * [`BarrierLockstep`] — threads run several barrier episodes in one
//!   phase body, checking after every rendezvous that (a) all
//!   participants had arrived before anyone was released, (b) the
//!   `wait_with` closure's effect is visible to every member immediately
//!   after the barrier, and (c) exactly one member is elected per
//!   episode. Running ≥ 2 episodes exercises reuse: the episode-stamp
//!   flags are never reset, so a stale-release bug would surface as a
//!   thread sailing through episode 2 on episode 1's stamps.
//! * [`StealCoverage`] — threads drain a pre-seeded set of chunk deques,
//!   marking every index they execute; afterwards every index must have
//!   been executed exactly once (no drop, no duplicate), under every
//!   explored interleaving of pops and steals.
//!
//! Both are generic over the primitive so the same program drives the
//! real implementation (must stay clean) and the seeded bugs in
//! [`crate::buggy`] (must be caught): [`EarlyReleaseBarrier`] and
//! [`DroppingStealer`].
//!
//! Only the dissemination topology is modelable: the centralized
//! `SpinBarrier` waits on plain `std` atomics the checker cannot see (a
//! model thread spinning there would never reach a scheduling point and
//! the lockstep executor would hang waiting for quiescence).

use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

use pram_exec::{DisseminationBarrier, StealQueues};

use crate::buggy::{DroppingStealer, EarlyReleaseBarrier};
use crate::models::Model;

/// The barrier surface [`BarrierLockstep`] drives — object-safe so one
/// model program covers the real barrier and the buggy seed.
pub trait ModelBarrier: Sync {
    /// Rendezvous as member `tid`; `true` on exactly one member.
    fn wait(&self, tid: usize) -> bool;
    /// Rendezvous; the elected member runs `f` before any member returns.
    fn wait_with(&self, tid: usize, f: &mut dyn FnMut()) -> bool;
}

impl ModelBarrier for DisseminationBarrier {
    fn wait(&self, tid: usize) -> bool {
        DisseminationBarrier::wait(self, tid)
    }
    fn wait_with(&self, tid: usize, f: &mut dyn FnMut()) -> bool {
        DisseminationBarrier::wait_with(self, tid, || f())
    }
}

impl ModelBarrier for EarlyReleaseBarrier {
    fn wait(&self, tid: usize) -> bool {
        EarlyReleaseBarrier::wait(self, tid)
    }
    fn wait_with(&self, tid: usize, f: &mut dyn FnMut()) -> bool {
        EarlyReleaseBarrier::wait_with(self, tid, || f())
    }
}

/// Multi-episode barrier rendezvous with arrival, broadcast-visibility,
/// and single-election checks (see module docs). Even episodes use
/// `wait`, odd episodes `wait_with` + a broadcast slot.
pub struct BarrierLockstep<B> {
    name: String,
    barrier: B,
    threads: usize,
    episodes: usize,
    /// Bookkeeping in plain `std` atomics: no scheduling points.
    arrived: Vec<AtomicUsize>,
    elections: Vec<AtomicUsize>,
    slot: Vec<AtomicU32>,
    early_release: AtomicBool,
    stale_broadcast: AtomicBool,
}

impl<B: ModelBarrier> BarrierLockstep<B> {
    /// `threads` members running `episodes` back-to-back rendezvous.
    pub fn new(name: &str, barrier: B, threads: usize, episodes: usize) -> BarrierLockstep<B> {
        let mk_usize = || {
            let mut v = Vec::with_capacity(episodes);
            v.resize_with(episodes, || AtomicUsize::new(0));
            v
        };
        let mut slot = Vec::with_capacity(episodes);
        slot.resize_with(episodes, || AtomicU32::new(0));
        BarrierLockstep {
            name: name.to_string(),
            barrier,
            threads,
            episodes,
            arrived: mk_usize(),
            elections: mk_usize(),
            slot,
            early_release: AtomicBool::new(false),
            stale_broadcast: AtomicBool::new(false),
        }
    }
}

impl<B: ModelBarrier> Model for BarrierLockstep<B> {
    fn name(&self) -> &str {
        &self.name
    }
    fn threads(&self) -> usize {
        self.threads
    }
    fn run(&self, _phase: usize, tid: usize) {
        for e in 0..self.episodes {
            self.arrived[e].fetch_add(1, Ordering::Relaxed);
            let elected = if e % 2 == 0 {
                self.barrier.wait(tid)
            } else {
                let stamp = e as u32 + 1;
                self.barrier
                    .wait_with(tid, &mut || self.slot[e].store(stamp, Ordering::Relaxed))
            };
            if elected {
                self.elections[e].fetch_add(1, Ordering::Relaxed);
            }
            // Arrival counts are monotone, so observing fewer than
            // `threads` arrivals *after* the rendezvous proves a release
            // before some member arrived.
            if self.arrived[e].load(Ordering::Relaxed) != self.threads {
                self.early_release.store(true, Ordering::Relaxed);
            }
            if e % 2 == 1 && self.slot[e].load(Ordering::Relaxed) != e as u32 + 1 {
                self.stale_broadcast.store(true, Ordering::Relaxed);
            }
        }
    }
    fn check_final(&self) -> Result<(), String> {
        if self.early_release.load(Ordering::Relaxed) {
            return Err("barrier released early: a member returned before all arrived".to_string());
        }
        if self.stale_broadcast.load(Ordering::Relaxed) {
            return Err("wait_with closure effect not visible to a released member".to_string());
        }
        for (e, n) in self.elections.iter().enumerate() {
            let n = n.load(Ordering::Relaxed);
            if n != 1 {
                return Err(format!("episode {e}: expected exactly 1 election, got {n}"));
            }
        }
        Ok(())
    }
}

/// The queue surface [`StealCoverage`] drains.
pub trait ModelStealSource: Sync {
    /// Next range for `tid` to execute, or `None` when the loop is drained.
    fn next(&self, tid: usize) -> Option<Range<usize>>;
}

impl ModelStealSource for StealQueues {
    fn next(&self, tid: usize) -> Option<Range<usize>> {
        StealQueues::next(self, tid, None)
    }
}

impl ModelStealSource for DroppingStealer {
    fn next(&self, tid: usize) -> Option<Range<usize>> {
        DroppingStealer::next(self, tid)
    }
}

/// No-drop / no-duplicate coverage of a pre-seeded stealing loop (see
/// module docs). Seed the queues before handing them in — construction
/// runs on the unhooked main thread, so seeding adds no scheduling
/// points.
pub struct StealCoverage<Q> {
    name: String,
    queues: Q,
    threads: usize,
    hits: Vec<AtomicU32>,
}

impl<Q: ModelStealSource> StealCoverage<Q> {
    /// `threads` drainers over index space `0..len`.
    pub fn new(name: &str, queues: Q, threads: usize, len: usize) -> StealCoverage<Q> {
        let mut hits = Vec::with_capacity(len);
        hits.resize_with(len, || AtomicU32::new(0));
        StealCoverage {
            name: name.to_string(),
            queues,
            threads,
            hits,
        }
    }
}

impl<Q: ModelStealSource> Model for StealCoverage<Q> {
    fn name(&self) -> &str {
        &self.name
    }
    fn threads(&self) -> usize {
        self.threads
    }
    fn run(&self, _phase: usize, tid: usize) {
        while let Some(r) = self.queues.next(tid) {
            for i in r {
                self.hits[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    fn check_final(&self) -> Result<(), String> {
        for (i, h) in self.hits.iter().enumerate() {
            match h.load(Ordering::Relaxed) {
                1 => {}
                0 => return Err(format!("index {i} dropped: never executed")),
                n => return Err(format!("index {i} duplicated: executed {n} times")),
            }
        }
        Ok(())
    }
}
