//! # pram-check — deterministic schedule exploration for the arbitration substrate
//!
//! The entire reproduction rests on one invariant: among all concurrently
//! executing `try_claim(cell, round)` calls, **at most one** wins
//! (`pram_core::traits`). Stress tests on OS threads exercise it
//! statistically, but cannot reliably reach the narrow interleavings where
//! an arbiter could break — the read-skip fast path racing a round advance,
//! a gatekeeper reused without reset, a claim lost between a load and a
//! store. This crate reaches them deterministically.
//!
//! ## How it works
//!
//! `pram-core` routes every atomic it arbitrates with through its
//! `pram_core::sync` facade. Built normally, the facade is a zero-cost
//! re-export of `std::sync::atomic` / `parking_lot`. Built with
//! `RUSTFLAGS="--cfg pram_check"`, each atomic operation first reports to a
//! per-thread hook before executing. This crate installs that hook: model
//! threads are real OS threads, but they run in **lockstep** — every thread
//! parks at each atomic operation until a scheduler grants it the next
//! step, so exactly one thread runs between scheduling points and every
//! execution is a deterministic function of the schedule (the sequence of
//! granted thread IDs).
//!
//! On top of the lockstep executor ([`executor`], `--cfg pram_check` only):
//!
//! * [`explore::explore_exhaustive`] — DFS over the schedule tree: every
//!   interleaving of a small model (≤ 3 threads × short programs) is
//!   executed. Completing without a violation is a proof within the bound.
//! * [`explore::explore_random`] — seeded random + PCT-style priority
//!   schedules for configurations too large to exhaust. Any failure prints
//!   the seed; the same seed replays the same execution.
//! * [`explore::replay`] — re-run one recorded schedule (the `Vec<usize>`
//!   of granted thread IDs printed with every violation).
//!
//! [`models`] packages the substrate's invariants as checkable [`models::Model`]s
//! (single winner, reset/re-arm, priority minimum, payload non-tearing),
//! [`sync_models`] extends the same treatment to the execution substrate's
//! own synchronization (the dissemination barrier's no-early-release /
//! episode-reuse / broadcast-visibility contract, and the work-stealing
//! loop's no-drop / no-duplicate coverage), and [`buggy`] provides
//! deliberately broken implementations — a check-then-act CAS-LT, a
//! gatekeeper that decides on a counter *read*, a dissemination barrier
//! one signal round short, a stealer that drops part of its stolen batch,
//! an adaptive arbiter that switches delegates mid-round instead of at an
//! epoch boundary — that the checker must *catch*, pinning its own
//! sensitivity.
//!
//! The schedule policies ([`schedule`]) and the buggy arbiters compile and
//! unit-test in every build; only the executor/explorer/models need the
//! instrumented cfg. The full matrix runs from the workspace root:
//!
//! ```text
//! RUSTFLAGS="--cfg pram_check" cargo test -p crcw-pram --test check_arbiters
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod buggy;
pub mod schedule;

#[cfg(pram_check)]
pub mod executor;
#[cfg(pram_check)]
pub mod explore;
#[cfg(pram_check)]
pub mod models;
#[cfg(pram_check)]
pub mod sync_models;

pub use buggy::{
    BuggyCasLtArray, BuggyCasLtCell, BuggySwitchArbiter, CountingClaimCell, DroppingStealer,
    EarlyReleaseBarrier,
};
pub use schedule::{Chooser, DfsChooser, FixedChooser, PctChooser, RandomChooser};

#[cfg(pram_check)]
pub use executor::{run_one, RunOutcome};
#[cfg(pram_check)]
pub use explore::{
    explore_exhaustive, explore_random, replay, replay_seed, ExploreOptions, ExploreReport,
    Violation,
};
#[cfg(pram_check)]
pub use models::{Model, TelemetryPassive};
#[cfg(pram_check)]
pub use sync_models::{BarrierLockstep, ModelBarrier, ModelStealSource, StealCoverage};
